/**
 * @file
 * Ablation: ownership-table size.
 *
 * Paper Section 4.1: "realistic implementations generally have at
 * least tens of thousands of entries to minimize aliasing".  This
 * bench shrinks the otable and reports the aliasing costs: chain
 * inserts for USTM, extra barrier conflicts for HyTM's hardware
 * transactions (false conflicts on shared rows), and the resulting
 * performance.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

int
main(int argc, char **argv)
{
    JsonReport report("ablation_otable", argc, argv);
    parseSchedArgs(argc, argv);
    std::printf("Ablation: otable buckets vs. aliasing "
                "(vacation-low, 8 threads)\n\n");
    std::printf("%-10s %16s %18s %18s %14s\n", "buckets",
                "ustm-chain-ins", "hytm-barrier-conf", "hytm-speedup",
                "ustm-speedup");

    const BenchSpec spec{"vacation-low", "vacation", false};

    auto seq = [&](unsigned buckets) {
        auto w = makeStampWorkload(spec);
        RunConfig cfg = baseRunConfig();
        cfg.kind = TxSystemKind::NoTm;
        cfg.threads = 1;
        cfg.machine.seed = 42;
        cfg.machine.otableBuckets = buckets;
        return runWorkload(*w, cfg).cycles;
    };
    auto run = [&](TxSystemKind kind, unsigned buckets) {
        auto w = makeStampWorkload(spec);
        RunConfig cfg = baseRunConfig();
        cfg.kind = kind;
        cfg.threads = 8;
        cfg.machine.seed = 42;
        cfg.machine.otableBuckets = buckets;
        RunResult r = runWorkload(*w, cfg);
        if (!r.valid)
            std::abort();
        return r;
    };

    for (unsigned buckets : {256u, 1024u, 4096u, 65536u}) {
        const Cycles s = seq(buckets);
        RunResult ustm = run(TxSystemKind::Ustm, buckets);
        RunResult hytm = run(TxSystemKind::HyTm, buckets);
        std::printf("%-10u %16llu %18llu %18.2f %14.2f\n", buckets,
                    static_cast<unsigned long long>(
                        ustm.stat("ustm.chain_inserts")),
                    static_cast<unsigned long long>(
                        hytm.stat("hytm.barrier_conflicts")),
                    double(s) / double(hytm.cycles),
                    double(s) / double(ustm.cycles));
        if (report.enabled()) {
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", spec.id);
            w.kv("otable_buckets", buckets);
            w.kv("seq_cycles", s);
            w.kv("ustm_chain_inserts",
                 ustm.stat("ustm.chain_inserts"));
            w.kv("hytm_barrier_conflicts",
                 hytm.stat("hytm.barrier_conflicts"));
            w.kv("hytm_speedup", double(s) / double(hytm.cycles));
            w.kv("ustm_speedup", double(s) / double(ustm.cycles));
            w.endObject();
            report.row(w);
        }
    }
    std::printf("\n(expected: small tables alias heavily -- USTM "
                "chain traffic explodes and its performance drops; "
                "tens of thousands of buckets make aliasing "
                "negligible, as the paper prescribes)\n");
    return report.write() ? 0 : 1;
}
