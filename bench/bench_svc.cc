/**
 * @file
 * bench_svc: tmserve throughput + tail-latency benchmark.
 *
 * Runs the transactional KV service (src/svc) under every compared
 * TxSystemKind, in closed-loop (think-time) and open-loop
 * (arrival-rate + admission control) modes, over a Zipfian-skewed key
 * space with a raw non-transactional GET fraction, and reports:
 *
 *  - per (system, mode): served/shed request counts and throughput in
 *    requests per million cycles;
 *  - per (system, mode, request type): p50/p99/p99.9 latency in
 *    cycles, from the svc.latency.<type> histograms (open-loop
 *    latency is measured from arrival, so queueing delay lands in the
 *    tail).
 *
 * `--json` emits a "ufotm-svc" document (docs/OBSERVABILITY.md) to
 * BENCH_svc_latency.json; tools/benchdiff.py gates the committed
 * baseline in bench/baselines/ on the throughput and p99 rows.
 * `--quick` shrinks the request count for CI smoke runs.
 */

#include <array>
#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "svc/service.hh"

namespace {

using namespace utm;

svc::SvcParams
benchParams(bool open_loop, bool quick)
{
    svc::SvcParams p;
    p.load.keyspace = 128;
    p.load.zipfTheta = 0.8; // Skewed: a few hot keys carry the load.
    p.load.requestsPerClient = quick ? 24 : 96;
    p.load.scanLen = 8;
    p.load.seed = 7;
    p.load.openLoop = open_loop;
    // Open loop: arrivals faster than the contended service rate, so
    // queues build and the admission bound sheds under pressure.
    p.load.meanInterarrival = 150;
    p.load.meanThink = 200;
    p.mapBuckets = 32;
    p.maxQueueDepth = 16;
    return p;
}

const std::array<svc::ReqType, svc::kNumReqTypes> kReqTypes = {
    svc::ReqType::Get, svc::ReqType::Put, svc::ReqType::Scan,
    svc::ReqType::Rmw, svc::ReqType::RawGet,
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    bench::parseSchedArgs(argc, argv);
    bench::JsonReport report("svc_latency", argc, argv, "ufotm-svc");

    const int threads = 4;
    std::printf("tmserve: KV service, %d clients, Zipfian(0.8) keys, "
                "%d requests/client%s\n",
                threads, benchParams(false, quick).load.requestsPerClient,
                quick ? " (quick)" : "");
    std::printf("%-13s %-6s %9s %6s %11s %9s %9s %9s\n", "system",
                "mode", "requests", "shed", "req/Mcyc", "p50", "p99",
                "p99.9");

    for (const bool open_loop : {false, true}) {
        const char *mode = open_loop ? "open" : "closed";
        for (TxSystemKind kind : bench::figure5Systems()) {
            svc::SvcParams p = benchParams(open_loop, quick);
            RunConfig cfg = bench::baseRunConfig();
            cfg.kind = kind;
            cfg.threads = threads;
            cfg.machine.seed = 42;
            const RunResult res = svc::runService(p, cfg);
            if (!res.valid) {
                std::fprintf(stderr,
                             "VALIDATION FAILED: svc on %s (%s loop)\n",
                             txSystemKindName(kind), mode);
                return 1;
            }

            const std::uint64_t served = res.stat("svc.requests");
            const std::uint64_t shed = res.stat("svc.shed");
            const Histogram &lat = res.hist("svc.latency");
            const double throughput =
                res.cycles ? double(served) * 1e6 / double(res.cycles)
                           : 0.0;
            std::printf("%-13s %-6s %9llu %6llu %11.1f %9llu %9llu "
                        "%9llu\n",
                        txSystemKindName(kind), mode,
                        (unsigned long long)served,
                        (unsigned long long)shed, throughput,
                        (unsigned long long)lat.quantile(0.50),
                        (unsigned long long)lat.quantile(0.99),
                        (unsigned long long)lat.quantile(0.999));

            if (!report.enabled())
                continue;

            // One throughput row per (system, mode)...
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", "svc-latency");
            w.kv("system", txSystemKindName(kind));
            w.kv("mode", mode);
            w.kv("threads", threads);
            w.kv("requests", served);
            w.kv("shed", shed);
            w.kv("queued", res.stat("svc.queued"));
            w.kv("aborts", res.stat("svc.request_aborts"));
            w.kv("run_cycles", res.cycles);
            w.kv("throughput_req_per_mcycle", throughput);
            w.endObject();
            report.row(w);

            // ...and one p50/p99/p99.9 row per request type.
            for (svc::ReqType t : kReqTypes) {
                const char *tname = svc::reqTypeName(t);
                const Histogram &h = res.hist(
                    std::string("svc.latency.") + tname);
                json::Writer r;
                r.beginObject();
                r.kv("benchmark", "svc-latency");
                r.kv("system", txSystemKindName(kind));
                r.kv("mode", mode);
                r.kv("threads", threads);
                r.kv("request", tname);
                r.kv("requests",
                     res.stat(std::string("svc.requests.") + tname));
                r.kv("p50_cycles", h.quantile(0.50));
                r.kv("p99_cycles", h.quantile(0.99));
                r.kv("p999_cycles", h.quantile(0.999));
                r.endObject();
                report.row(r);
            }
        }
    }

    return report.write() ? 0 : 1;
}
