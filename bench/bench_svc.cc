/**
 * @file
 * bench_svc: tmserve throughput + tail-latency benchmark.
 *
 * Default mode runs the transactional KV service (src/svc) under every
 * compared TxSystemKind, in closed-loop (think-time) and open-loop
 * (arrival-rate + admission control) modes, over a Zipfian-skewed key
 * space with a raw non-transactional GET fraction, and reports:
 *
 *  - per (system, mode): served/shed request counts and throughput in
 *    requests per million cycles;
 *  - per (system, mode, request type): p50/p99/p99.9 latency in
 *    cycles, from the svc.latency.<type> histograms (open-loop
 *    latency is measured from arrival, so queueing delay lands in the
 *    tail).
 *
 * `--scaling` instead runs the scaling-curve family (EXPERIMENTS.md
 * E12): closed-loop throughput and tail latency versus simulated core
 * count x store shard count, with a constant TOTAL index/otable budget
 * across shard counts — so the sharded win is contention spread, not
 * extra capacity.  The 1-shard curve is the pre-sharding contention
 * cliff (the control); the 8-shard curve must reach >= 3x the 1-shard
 * throughput at 32 cores at a comparable abort rate, and the bench
 * exits nonzero if it does not (the CI-gated win criterion).
 *
 * `--predictor` runs the path-predictor A/B (src/hybrid/
 * path_predictor.hh): the ufo-hybrid serves a Zipfian-skewed mix whose
 * SCANs are long enough to deterministically overflow the L1 read set,
 * with the predictor off and on, in both loop modes.  The win
 * criterion — predicted-software SCAN starts skip the doomed hardware
 * attempt, improving p99.9 SCAN latency at equal-or-better
 * throughput — is self-gated: the bench exits nonzero if the
 * predictor-on run loses.
 *
 * `--durable` runs the durability A/B (src/mem/persist.hh): the same
 * service mix with TmPolicy::durable off and on, on the ufo-hybrid and
 * the all-software ustm-ufo, in both loop modes.  The documented
 * overhead measurement — throughput and persist cycles per served
 * request (prof.cycles.{btm,ustm}.persist) — is self-gated: the
 * durable-off arm must carry no persistence counters, the durable-on
 * arm must log every writing commit, and closed-loop throughput must
 * stay within 3x of the non-durable arm (open-loop throughput is
 * reported but not bounded: fence latency vs the fixed arrival rate
 * measures overload, not log cost).
 *
 * `--json` emits a "ufotm-svc" document (docs/OBSERVABILITY.md,
 * schema_version 2; the predictor bench emits schema_version 3, which
 * adds the `series` row key and the pred.* row fields) to
 * BENCH_svc_latency.json / BENCH_svc_scaling.json /
 * BENCH_svc_predictor.json; tools/benchdiff.py gates the committed
 * baselines in bench/baselines/ on the throughput and p99 rows.
 * `--quick` shrinks the request count for CI smoke runs.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "svc/service.hh"

namespace {

using namespace utm;

/**
 * The "ufotm-svc" document schema version.  v2: adds the xfer request
 * verb, the svc-scaling row family (with a `shards` key field), and
 * the shard.* counters (docs/OBSERVABILITY.md has the migration note).
 */
constexpr int kSvcSchemaVersion = 2;

/**
 * Schema of the svc_predictor document only.  v3: adds the `series`
 * row key ("predictor-off" / "predictor-on") and the predictor row
 * fields (predictions, predicted_sw, hits, mispredicts).  The latency
 * and scaling documents stay at v2 — their committed baselines are
 * byte-stable.
 */
constexpr int kSvcPredictorSchemaVersion = 3;

/**
 * Schema of the svc_batching document only (--batching).  v4: adds
 * the `batch_k` row-identity field (the configured batch ceiling; 0
 * on the batching-off arm) and the batch.* row fields (batches,
 * batch_members, batch_splits, batch_aborts,
 * begin_commit_cycles_per_req).  The other documents keep their
 * versions, byte-identical.
 */
constexpr int kSvcBatchingSchemaVersion = 4;

/**
 * Schema of the svc_durable document only (--durable).  v5: the
 * `series` row key takes "durable-off" / "durable-on" and the
 * throughput rows add the persistence fields (dur_records,
 * dur_log_bytes, dur_sfence, dur_clwb, persist_cycles_per_req).  The
 * other documents keep their versions, byte-identical — the
 * durable-off arm runs the exact non-durable machine (the persistence
 * domain is inert unless TmPolicy::durable is set).
 */
constexpr int kSvcDurableSchemaVersion = 5;

svc::SvcParams
benchParams(bool open_loop, bool quick)
{
    svc::SvcParams p;
    p.load.keyspace = 128;
    p.load.zipfTheta = 0.8; // Skewed: a few hot keys carry the load.
    p.load.requestsPerClient = quick ? 24 : 96;
    p.load.scanLen = 8;
    p.load.seed = 7;
    p.load.openLoop = open_loop;
    // Open loop: arrivals faster than the contended service rate, so
    // queues build and the admission bound sheds under pressure.
    p.load.meanInterarrival = 150;
    p.load.meanThink = 200;
    p.mapBuckets = 32;
    p.maxQueueDepth = 16;
    return p;
}

const std::array<svc::ReqType, svc::kNumReqTypes> kReqTypes = {
    svc::ReqType::Get,  svc::ReqType::Put,  svc::ReqType::Scan,
    svc::ReqType::Rmw,  svc::ReqType::Xfer, svc::ReqType::RawGet,
};

int
runLatency(bool quick, bench::JsonReport &report)
{
    const int threads = 4;
    std::printf("tmserve: KV service, %d clients, Zipfian(0.8) keys, "
                "%d requests/client%s\n",
                threads, benchParams(false, quick).load.requestsPerClient,
                quick ? " (quick)" : "");
    std::printf("%-13s %-6s %9s %6s %11s %9s %9s %9s\n", "system",
                "mode", "requests", "shed", "req/Mcyc", "p50", "p99",
                "p99.9");

    for (const bool open_loop : {false, true}) {
        const char *mode = open_loop ? "open" : "closed";
        for (TxSystemKind kind : bench::figure5Systems()) {
            svc::SvcParams p = benchParams(open_loop, quick);
            RunConfig cfg = bench::baseRunConfig();
            cfg.kind = kind;
            cfg.threads = threads;
            cfg.machine.seed = 42;
            const RunResult res = svc::runService(p, cfg);
            if (!res.valid) {
                std::fprintf(stderr,
                             "VALIDATION FAILED: svc on %s (%s loop)\n",
                             txSystemKindName(kind), mode);
                return 1;
            }

            const std::uint64_t served = res.stat("svc.requests");
            const std::uint64_t shed = res.stat("svc.shed");
            const Histogram &lat = res.hist("svc.latency");
            const double throughput =
                res.cycles ? double(served) * 1e6 / double(res.cycles)
                           : 0.0;
            std::printf("%-13s %-6s %9llu %6llu %11.1f %9llu %9llu "
                        "%9llu\n",
                        txSystemKindName(kind), mode,
                        (unsigned long long)served,
                        (unsigned long long)shed, throughput,
                        (unsigned long long)lat.quantile(0.50),
                        (unsigned long long)lat.quantile(0.99),
                        (unsigned long long)lat.quantile(0.999));

            if (!report.enabled())
                continue;

            // One throughput row per (system, mode)...
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", "svc-latency");
            w.kv("system", txSystemKindName(kind));
            w.kv("mode", mode);
            w.kv("threads", threads);
            w.kv("requests", served);
            w.kv("shed", shed);
            w.kv("queued", res.stat("svc.queued"));
            w.kv("aborts", res.stat("svc.request_aborts"));
            w.kv("run_cycles", res.cycles);
            w.kv("throughput_req_per_mcycle", throughput);
            w.endObject();
            report.row(w);

            // ...and one p50/p99/p99.9 row per request type.
            for (svc::ReqType t : kReqTypes) {
                const char *tname = svc::reqTypeName(t);
                const Histogram &h = res.hist(
                    std::string("svc.latency.") + tname);
                json::Writer r;
                r.beginObject();
                r.kv("benchmark", "svc-latency");
                r.kv("system", txSystemKindName(kind));
                r.kv("mode", mode);
                r.kv("threads", threads);
                r.kv("request", tname);
                r.kv("requests",
                     res.stat(std::string("svc.requests.") + tname));
                r.kv("p50_cycles", h.quantile(0.50));
                r.kv("p99_cycles", h.quantile(0.99));
                r.kv("p999_cycles", h.quantile(0.999));
                r.endObject();
                report.row(r);
            }
        }
    }
    return 0;
}

/**
 * Predictor A/B configuration: the latency-bench service shape with
 * lengthened SCANs, on a capacity-bound L1 (kPredictorL1Sets x
 * kPredictorL1Ways = 64 speculative lines; the default 64x8 geometry
 * holds the whole 128-key store, so nothing ever overflows) — every
 * hardware SCAN attempt deterministically SetOverflows its way to
 * software, while the point requests still fit.  That
 * re-discovered-every-time failover is exactly what the path
 * predictor learns away.
 */
constexpr unsigned kPredictorL1Sets = 16;
constexpr unsigned kPredictorL1Ways = 4;

svc::SvcParams
predictorParams(bool open_loop, bool quick)
{
    svc::SvcParams p = benchParams(open_loop, quick);
    p.load.scanLen = 48;
    // Scan-heavy, lightly-written mix: the SCAN tail then measures the
    // serving path (is the doomed hardware attempt skipped?) rather
    // than software-retry noise from writers on the hot keys.
    p.load.mix.getPct = 45;
    p.load.mix.putPct = 10;
    p.load.mix.scanPct = 30;
    p.load.mix.rmwPct = 5;
    p.load.mix.xferPct = 0;
    p.load.mix.rawGetPct = 10;
    // Long scans make requests ~10x slower than the latency bench's
    // but arrivals keep the 150-cycle spacing: the open-loop point is
    // a deliberate overload probe — the predictor's win there is
    // capacity (more requests served before the admission bound sheds),
    // measured by the throughput gate below.
    p.load.meanInterarrival = 1500;
    return p;
}

int
runPredictor(bool quick, bench::JsonReport &report)
{
    const TxSystemKind kind = TxSystemKind::UfoHybrid;
    const int threads = 4;
    std::printf("tmserve predictor A/B: %s, %d clients, Zipfian(0.8) "
                "keys, scanLen %llu%s\n",
                txSystemKindName(kind), threads,
                (unsigned long long)predictorParams(false, quick)
                    .load.scanLen,
                quick ? " (quick)" : "");
    std::printf("%-6s %-9s %9s %6s %11s %10s %10s %10s %12s %11s\n",
                "mode", "predictor", "requests", "shed", "req/Mcyc",
                "scan p50", "scan p99", "scan p99.9", "predictions",
                "mispredicts");

    struct Point
    {
        double throughput = 0.0;
        std::uint64_t served = 0;
        std::uint64_t p999Scan = 0;
    };
    // (open_loop, predictor_on) -> gate metrics.
    std::map<std::pair<bool, bool>, Point> points;

    for (const bool open_loop : {false, true}) {
        const char *mode = open_loop ? "open" : "closed";
        for (const bool pred_on : {false, true}) {
            const char *series =
                pred_on ? "predictor-on" : "predictor-off";
            svc::SvcParams p = predictorParams(open_loop, quick);
            RunConfig cfg = bench::baseRunConfig();
            cfg.kind = kind;
            cfg.threads = threads;
            cfg.machine.seed = 42;
            cfg.machine.l1Sets = kPredictorL1Sets;
            cfg.machine.l1Ways = kPredictorL1Ways;
            cfg.policy.predictor.enable = pred_on;
            const RunResult res = svc::runService(p, cfg);
            if (!res.valid) {
                std::fprintf(stderr,
                             "VALIDATION FAILED: svc-predictor %s "
                             "(%s loop)\n",
                             series, mode);
                return 1;
            }

            const std::uint64_t served = res.stat("svc.requests");
            const std::uint64_t shed = res.stat("svc.shed");
            const double throughput =
                res.cycles ? double(served) * 1e6 / double(res.cycles)
                           : 0.0;
            const Histogram &scan = res.hist("svc.latency.scan");
            points[{open_loop, pred_on}] = {throughput, served,
                                            scan.quantile(0.999)};

            std::printf("%-6s %-9s %9llu %6llu %11.1f %10llu %10llu "
                        "%10llu %12llu %11llu\n",
                        mode, pred_on ? "on" : "off",
                        (unsigned long long)served,
                        (unsigned long long)shed, throughput,
                        (unsigned long long)scan.quantile(0.50),
                        (unsigned long long)scan.quantile(0.99),
                        (unsigned long long)scan.quantile(0.999),
                        (unsigned long long)res.stat("pred.predictions"),
                        (unsigned long long)res.stat("pred.mispredicts"));

            if (!report.enabled())
                continue;

            // One throughput row per (mode, series)...
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", "svc-predictor");
            w.kv("system", txSystemKindName(kind));
            w.kv("mode", mode);
            w.kv("series", series);
            w.kv("threads", threads);
            w.kv("requests", served);
            w.kv("shed", shed);
            w.kv("aborts", res.stat("svc.request_aborts"));
            w.kv("run_cycles", res.cycles);
            w.kv("throughput_req_per_mcycle", throughput);
            w.kv("predictions", res.stat("pred.predictions"));
            w.kv("predicted_sw", res.stat("pred.predictions.sw"));
            w.kv("hits", res.stat("pred.hits"));
            w.kv("mispredicts", res.stat("pred.mispredicts"));
            w.endObject();
            report.row(w);

            // ...and one latency row per request type.
            for (svc::ReqType t : kReqTypes) {
                const char *tname = svc::reqTypeName(t);
                const Histogram &h =
                    res.hist(std::string("svc.latency.") + tname);
                json::Writer r;
                r.beginObject();
                r.kv("benchmark", "svc-predictor");
                r.kv("system", txSystemKindName(kind));
                r.kv("mode", mode);
                r.kv("series", series);
                r.kv("threads", threads);
                r.kv("request", tname);
                r.kv("requests",
                     res.stat(std::string("svc.requests.") + tname));
                r.kv("p50_cycles", h.quantile(0.50));
                r.kv("p99_cycles", h.quantile(0.99));
                r.kv("p999_cycles", h.quantile(0.999));
                r.endObject();
                report.row(r);
            }
        }
    }

    // The win criterion (ISSUE 7), self-gating so CI fails loudly if
    // the predictor stops paying for itself:
    //  - closed loop (the latency criterion): predicted-software SCAN
    //    starts skip the doomed hardware attempt, so p99.9 SCAN
    //    latency improves at equal-or-better throughput;
    //  - open loop (the capacity criterion): under overload, the
    //    cycles not wasted on doomed attempts serve more requests
    //    before the admission bound sheds — served count and
    //    throughput must both improve.
    // Quick mode reports the same rows but does not gate: with 24
    // requests per client the predictor's warm-up (one hard failover
    // per site) is a large fraction of the whole run.
    if (quick) {
        std::printf("predictor gate: skipped in --quick (warm-up "
                    "dominates the short streams)\n");
        return 0;
    }
    int rc = 0;
    const Point &c_off = points.at({false, false});
    const Point &c_on = points.at({false, true});
    std::printf("predictor gate (closed): scan p99.9 %llu -> %llu, "
                "throughput %.1f -> %.1f req/Mcyc\n",
                (unsigned long long)c_off.p999Scan,
                (unsigned long long)c_on.p999Scan, c_off.throughput,
                c_on.throughput);
    if (c_on.p999Scan >= c_off.p999Scan) {
        std::fprintf(stderr,
                     "PREDICTOR GATE FAILED (closed): scan p99.9 "
                     "%llu !< %llu\n",
                     (unsigned long long)c_on.p999Scan,
                     (unsigned long long)c_off.p999Scan);
        rc = 1;
    }
    if (c_on.throughput < c_off.throughput) {
        std::fprintf(stderr,
                     "PREDICTOR GATE FAILED (closed): throughput "
                     "%.2f < %.2f req/Mcyc\n",
                     c_on.throughput, c_off.throughput);
        rc = 1;
    }
    const Point &o_off = points.at({true, false});
    const Point &o_on = points.at({true, true});
    std::printf("predictor gate (open): served %llu -> %llu, "
                "throughput %.1f -> %.1f req/Mcyc\n",
                (unsigned long long)o_off.served,
                (unsigned long long)o_on.served, o_off.throughput,
                o_on.throughput);
    if (o_on.served < o_off.served || o_on.throughput < o_off.throughput) {
        std::fprintf(stderr,
                     "PREDICTOR GATE FAILED (open): served %llu / "
                     "throughput %.2f not better than %llu / %.2f\n",
                     (unsigned long long)o_on.served, o_on.throughput,
                     (unsigned long long)o_off.served,
                     o_off.throughput);
        rc = 1;
    }
    return rc;
}

/**
 * Batching A/B configuration: the latency-bench service shape with a
 * read-heavy, xfer-free mix (long same-class runs are what the
 * coalescer drains), a thin closed-loop think time (so the
 * per-transaction begin/commit tax is a visible fraction of each
 * request), and an open-loop overload (deep admission queues are
 * where coalescing recovers capacity).
 */
svc::SvcParams
batchingParams(TxSystemKind kind, bool open_loop, bool quick,
               bool batch_on)
{
    svc::SvcParams p = benchParams(open_loop, quick);
    p.load.mix.getPct = 50;
    p.load.mix.putPct = 15;
    p.load.mix.scanPct = 15;
    p.load.mix.rmwPct = 10;
    p.load.mix.xferPct = 0;
    p.load.mix.rawGetPct = 10;
    p.load.keyspace = 256;
    p.load.zipfTheta = 0.4;
    p.load.meanThink = 20;
    // Moderate open-loop overload *relative to each system's service
    // rate* (ustm-strong serves ~8x slower than ufo-hybrid): deep
    // enough that admission backlogs form and coalescing has work,
    // shallow enough that most requests are served, not shed.
    p.load.meanInterarrival =
        kind == TxSystemKind::UstmStrong ? 900 : 100;
    p.mapBuckets = 256;
    p.batch.enable = batch_on;
    p.batch.maxBatch = 8;
    // The sweep includes the all-software baseline (ustm-strong),
    // where amortizing the fixed software begin/commit tax is the
    // whole point; the adaptive shrink still protects contended
    // sites.
    p.batch.growOnSwCommit = true;
    return p;
}

/** Simulated cycles all threads spent in begin/commit phases (0 when
 *  compiled with UFOTM_PROFILING=OFF). */
std::uint64_t
beginCommitCycles(const RunResult &res)
{
    static const char *const comps[] = {"btm",  "ustm", "tl2", "hytm",
                                        "phtm", "sle",  "tm"};
    std::uint64_t sum = 0;
    for (const char *c : comps) {
        sum += res.stat(std::string("prof.cycles.") + c + ".begin");
        sum += res.stat(std::string("prof.cycles.") + c + ".commit");
    }
    return sum;
}

int
runBatching(bool quick, bench::JsonReport &report)
{
    const std::array<TxSystemKind, 2> kinds = {
        TxSystemKind::UfoHybrid, TxSystemKind::UstmStrong};
    const int threads = 4;
    std::printf("tmserve batching A/B: %d clients, Zipfian(0.4) keys, "
                "maxBatch %u%s\n",
                threads,
                batchingParams(TxSystemKind::UfoHybrid, false, quick, true)
                    .batch.maxBatch,
                quick ? " (quick)" : "");
    std::printf("%-13s %-6s %-9s %9s %11s %10s %8s %8s %7s %11s\n",
                "system", "mode", "batching", "requests", "req/Mcyc",
                "abort_rate", "batches", "members", "splits",
                "beg+com/req");

    struct Point
    {
        double throughput = 0.0;
        double abortRate = 0.0;
        double beginCommitPerReq = 0.0;
    };
    // (kind, open_loop, batch_on) -> gate metrics.
    std::map<std::tuple<int, bool, bool>, Point> points;

    for (TxSystemKind kind : kinds) {
        for (const bool open_loop : {false, true}) {
            const char *mode = open_loop ? "open" : "closed";
            for (const bool batch_on : {false, true}) {
                const char *series =
                    batch_on ? "batching-on" : "batching-off";
                svc::SvcParams p =
                    batchingParams(kind, open_loop, quick, batch_on);
                RunConfig cfg = bench::baseRunConfig();
                cfg.kind = kind;
                cfg.threads = threads;
                cfg.machine.seed = 42;
                const RunResult res = svc::runService(p, cfg);
                if (!res.valid) {
                    std::fprintf(stderr,
                                 "VALIDATION FAILED: svc-batching %s "
                                 "%s (%s loop)\n",
                                 txSystemKindName(kind), series, mode);
                    return 1;
                }

                const std::uint64_t served = res.stat("svc.requests");
                const std::uint64_t aborts =
                    res.stat("svc.request_aborts");
                const double abort_rate =
                    served ? double(aborts) / double(served) : 0.0;
                const double throughput =
                    res.cycles
                        ? double(served) * 1e6 / double(res.cycles)
                        : 0.0;
                const double bc_per_req =
                    served ? double(beginCommitCycles(res)) /
                                 double(served)
                           : 0.0;
                points[{int(kind), open_loop, batch_on}] = {
                    throughput, abort_rate, bc_per_req};

                std::printf("%-13s %-6s %-9s %9llu %11.1f %10.3f "
                            "%8llu %8llu %7llu %11.1f\n",
                            txSystemKindName(kind), mode,
                            batch_on ? "on" : "off",
                            (unsigned long long)served, throughput,
                            abort_rate,
                            (unsigned long long)res.stat(
                                "batch.batches"),
                            (unsigned long long)res.stat(
                                "batch.members"),
                            (unsigned long long)res.stat(
                                "batch.splits"),
                            bc_per_req);

                if (!report.enabled())
                    continue;

                // One throughput row per (system, mode, series)...
                json::Writer w;
                w.beginObject();
                w.kv("benchmark", "svc-batching");
                w.kv("system", txSystemKindName(kind));
                w.kv("mode", mode);
                w.kv("series", series);
                w.kv("batch_k",
                     std::uint64_t(batch_on ? p.batch.maxBatch : 0));
                w.kv("threads", threads);
                w.kv("requests", served);
                w.kv("shed", res.stat("svc.shed"));
                w.kv("aborts", aborts);
                w.kv("abort_rate", abort_rate);
                w.kv("run_cycles", res.cycles);
                w.kv("throughput_req_per_mcycle", throughput);
                w.kv("batches", res.stat("batch.batches"));
                w.kv("batch_members", res.stat("batch.members"));
                w.kv("batch_splits", res.stat("batch.splits"));
                w.kv("batch_aborts", res.stat("batch.aborts"));
                w.kv("begin_commit_cycles_per_req", bc_per_req);
                w.endObject();
                report.row(w);

                // ...and one latency row per request type.
                for (svc::ReqType t : kReqTypes) {
                    const char *tname = svc::reqTypeName(t);
                    const Histogram &h = res.hist(
                        std::string("svc.latency.") + tname);
                    json::Writer r;
                    r.beginObject();
                    r.kv("benchmark", "svc-batching");
                    r.kv("system", txSystemKindName(kind));
                    r.kv("mode", mode);
                    r.kv("series", series);
                    r.kv("batch_k",
                         std::uint64_t(batch_on ? p.batch.maxBatch : 0));
                    r.kv("threads", threads);
                    r.kv("request", tname);
                    r.kv("requests",
                         res.stat(std::string("svc.requests.") + tname));
                    r.kv("p50_cycles", h.quantile(0.50));
                    r.kv("p99_cycles", h.quantile(0.99));
                    r.kv("p999_cycles", h.quantile(0.999));
                    r.endObject();
                    report.row(r);
                }
            }
        }
    }

    // The win criterion (ISSUE 8), self-gating so CI fails loudly if
    // coalescing stops paying for itself: for every swept system and
    // loop mode, batching-on must beat batching-off throughput at an
    // equal-or-lower per-request abort rate, and (when the profiler
    // is compiled in) must spend fewer begin/commit cycles per served
    // request — the amortization the batch exists to recover.  Quick
    // mode reports the same rows but does not gate: with 24 requests
    // per client the adaptive K barely warms up.
    if (quick) {
        std::printf("batching gate: skipped in --quick (adaptive K "
                    "warm-up dominates the short streams)\n");
        return 0;
    }
    int rc = 0;
    for (TxSystemKind kind : kinds) {
        for (const bool open_loop : {false, true}) {
            const char *mode = open_loop ? "open" : "closed";
            const Point &off = points.at({int(kind), open_loop, false});
            const Point &on = points.at({int(kind), open_loop, true});
            std::printf(
                "batching gate (%s, %s): throughput %.1f -> %.1f "
                "req/Mcyc, abort rate %.3f -> %.3f, beg+com/req "
                "%.1f -> %.1f\n",
                txSystemKindName(kind), mode, off.throughput,
                on.throughput, off.abortRate, on.abortRate,
                off.beginCommitPerReq, on.beginCommitPerReq);
            if (on.throughput <= off.throughput) {
                std::fprintf(stderr,
                             "BATCHING GATE FAILED (%s, %s): "
                             "throughput %.2f !> %.2f req/Mcyc\n",
                             txSystemKindName(kind), mode,
                             on.throughput, off.throughput);
                rc = 1;
            }
            if (on.abortRate > off.abortRate) {
                std::fprintf(stderr,
                             "BATCHING GATE FAILED (%s, %s): abort "
                             "rate %.3f > %.3f\n",
                             txSystemKindName(kind), mode, on.abortRate,
                             off.abortRate);
                rc = 1;
            }
            if (off.beginCommitPerReq > 0.0 &&
                on.beginCommitPerReq >= off.beginCommitPerReq) {
                std::fprintf(stderr,
                             "BATCHING GATE FAILED (%s, %s): "
                             "begin+commit %.2f !< %.2f cycles/req\n",
                             txSystemKindName(kind), mode,
                             on.beginCommitPerReq,
                             off.beginCommitPerReq);
                rc = 1;
            }
        }
    }
    return rc;
}

/** Simulated cycles all threads spent in the persistence domain —
 *  clwb write-backs and commit fences charged against the redo-log
 *  append (0 when compiled with UFOTM_PROFILING=OFF, and on any
 *  non-durable run). */
std::uint64_t
persistCycles(const RunResult &res)
{
    static const char *const comps[] = {"btm", "ustm"};
    std::uint64_t sum = 0;
    for (const char *c : comps)
        sum += res.stat(std::string("prof.cycles.") + c + ".persist");
    return sum;
}

int
runDurable(bool quick, bench::JsonReport &report)
{
    const std::array<TxSystemKind, 2> kinds = {
        TxSystemKind::UfoHybrid, TxSystemKind::UstmStrong};
    const int threads = 4;
    std::printf("tmserve durability A/B: %d clients, Zipfian(0.8) "
                "keys%s\n",
                threads, quick ? " (quick)" : "");
    std::printf("%-13s %-6s %-8s %9s %11s %10s %8s %10s %12s\n",
                "system", "mode", "durable", "requests", "req/Mcyc",
                "abort_rate", "records", "log_bytes", "persist/req");

    struct Point
    {
        double throughput = 0.0;
        double abortRate = 0.0;
        double persistPerReq = 0.0;
        std::uint64_t logged = 0;
        std::uint64_t logBytes = 0;
        std::uint64_t beginCommit = 0; ///< Nonzero proves profiling on.
    };
    // (kind, open_loop, durable_on) -> gate metrics.
    std::map<std::tuple<int, bool, bool>, Point> points;

    for (TxSystemKind kind : kinds) {
        for (const bool open_loop : {false, true}) {
            const char *mode = open_loop ? "open" : "closed";
            for (const bool durable_on : {false, true}) {
                const char *series =
                    durable_on ? "durable-on" : "durable-off";
                svc::SvcParams p = benchParams(open_loop, quick);
                RunConfig cfg = bench::baseRunConfig();
                cfg.kind = kind;
                cfg.threads = threads;
                cfg.machine.seed = 42;
                cfg.policy.durable = durable_on;
                const RunResult res = svc::runService(p, cfg);
                if (!res.valid) {
                    std::fprintf(stderr,
                                 "VALIDATION FAILED: svc-durable %s "
                                 "%s (%s loop)\n",
                                 txSystemKindName(kind), series, mode);
                    return 1;
                }

                const std::uint64_t served = res.stat("svc.requests");
                const std::uint64_t aborts =
                    res.stat("svc.request_aborts");
                const double abort_rate =
                    served ? double(aborts) / double(served) : 0.0;
                const double throughput =
                    res.cycles
                        ? double(served) * 1e6 / double(res.cycles)
                        : 0.0;
                const double persist_per_req =
                    served ? double(persistCycles(res)) / double(served)
                           : 0.0;
                const std::uint64_t logged =
                    res.stat("dur.commits.logged");
                const std::uint64_t log_bytes = res.stat("dur.log_bytes");
                points[{int(kind), open_loop, durable_on}] = {
                    throughput,      abort_rate, persist_per_req,
                    logged,          log_bytes,  beginCommitCycles(res)};

                std::printf("%-13s %-6s %-8s %9llu %11.1f %10.3f "
                            "%8llu %10llu %12.1f\n",
                            txSystemKindName(kind), mode,
                            durable_on ? "on" : "off",
                            (unsigned long long)served, throughput,
                            abort_rate, (unsigned long long)logged,
                            (unsigned long long)log_bytes,
                            persist_per_req);

                if (!report.enabled())
                    continue;

                // One throughput row per (system, mode, series)...
                json::Writer w;
                w.beginObject();
                w.kv("benchmark", "svc-durable");
                w.kv("system", txSystemKindName(kind));
                w.kv("mode", mode);
                w.kv("series", series);
                w.kv("threads", threads);
                w.kv("requests", served);
                w.kv("shed", res.stat("svc.shed"));
                w.kv("aborts", aborts);
                w.kv("abort_rate", abort_rate);
                w.kv("run_cycles", res.cycles);
                w.kv("throughput_req_per_mcycle", throughput);
                w.kv("dur_records", logged);
                w.kv("dur_log_bytes", log_bytes);
                w.kv("dur_sfence", res.stat("dur.sfence"));
                w.kv("dur_clwb",
                     res.stat("dur.clwb.dirty") +
                         res.stat("dur.clwb.clean"));
                w.kv("persist_cycles_per_req", persist_per_req);
                w.endObject();
                report.row(w);

                // ...and one latency row per request type.
                for (svc::ReqType t : kReqTypes) {
                    const char *tname = svc::reqTypeName(t);
                    const Histogram &h = res.hist(
                        std::string("svc.latency.") + tname);
                    json::Writer r;
                    r.beginObject();
                    r.kv("benchmark", "svc-durable");
                    r.kv("system", txSystemKindName(kind));
                    r.kv("mode", mode);
                    r.kv("series", series);
                    r.kv("threads", threads);
                    r.kv("request", tname);
                    r.kv("requests",
                         res.stat(std::string("svc.requests.") + tname));
                    r.kv("p50_cycles", h.quantile(0.50));
                    r.kv("p99_cycles", h.quantile(0.99));
                    r.kv("p999_cycles", h.quantile(0.999));
                    r.endObject();
                    report.row(r);
                }
            }
        }
    }

    // The durability-overhead measurement (ISSUE 10), self-gating so
    // CI fails loudly if the redo log stops being cheap or stops
    // logging: for every swept system and loop mode the durable-off
    // arm must be exactly the non-durable machine (no persistence
    // counters, no persist cycles — the inert-domain guarantee the
    // byte-identical committed baselines rest on), the durable-on arm
    // must actually log (records > 0, >= 56 bytes each — the minimum
    // record is header + txid/ts/count + one write triple) and charge
    // its cost to prof.cycles.*.persist, and the measured overhead
    // must stay bounded: closed-loop durable-on throughput >= 1/3 of
    // durable-off.  The bound is deliberately loose — the interesting
    // number is the committed baseline row, which the benchdiff gate
    // pins exactly — but a 3x closed-loop collapse means the append
    // path grew a pathology.  Open-loop throughput is not bounded:
    // there the fence latency pushes the contended service rate below
    // the fixed arrival rate, so the off/on ratio measures how
    // overloaded the arrival schedule is, not what the log costs (the
    // fast hybrid drops past 1/3 while spending ~350 persist
    // cycles/request — both numbers are pinned in the baseline).
    int rc = 0;
    for (TxSystemKind kind : kinds) {
        for (const bool open_loop : {false, true}) {
            const char *mode = open_loop ? "open" : "closed";
            const Point &off = points.at({int(kind), open_loop, false});
            const Point &on = points.at({int(kind), open_loop, true});
            std::printf("durable gate (%s, %s): throughput %.1f -> "
                        "%.1f req/Mcyc (%.1f%%), %llu records / %llu "
                        "log bytes, persist %.1f cyc/req\n",
                        txSystemKindName(kind), mode, off.throughput,
                        on.throughput,
                        off.throughput > 0.0
                            ? 100.0 * on.throughput / off.throughput
                            : 0.0,
                        (unsigned long long)on.logged,
                        (unsigned long long)on.logBytes,
                        on.persistPerReq);
            if (off.logged != 0 || off.logBytes != 0 ||
                off.persistPerReq != 0.0) {
                std::fprintf(stderr,
                             "DURABLE GATE FAILED (%s, %s): "
                             "durable-off arm has persistence "
                             "counters (inert domain leaked)\n",
                             txSystemKindName(kind), mode);
                rc = 1;
            }
            if (on.logged == 0 || on.logBytes < 56 * on.logged) {
                std::fprintf(stderr,
                             "DURABLE GATE FAILED (%s, %s): "
                             "%llu records / %llu bytes logged\n",
                             txSystemKindName(kind), mode,
                             (unsigned long long)on.logged,
                             (unsigned long long)on.logBytes);
                rc = 1;
            }
            if (on.beginCommit > 0 && on.persistPerReq <= 0.0) {
                std::fprintf(stderr,
                             "DURABLE GATE FAILED (%s, %s): no "
                             "persist cycles charged (the "
                             "prof.cycles.*.persist attribution "
                             "broke)\n",
                             txSystemKindName(kind), mode);
                rc = 1;
            }
            if (!open_loop && 3.0 * on.throughput < off.throughput) {
                std::fprintf(stderr,
                             "DURABLE GATE FAILED (%s, %s): "
                             "throughput %.2f < 1/3 of %.2f "
                             "req/Mcyc\n",
                             txSystemKindName(kind), mode,
                             on.throughput, off.throughput);
                rc = 1;
            }
        }
    }
    return rc;
}

/**
 * Scaling-curve configuration.  Uniform keys keep logical (key-level)
 * conflicts — and therefore abort rates — low and comparable across
 * shard counts; the mix includes two-key transfers so cross-shard
 * commits are exercised on every sharded point.  The TOTAL map-bucket
 * and otable-bucket budgets are held constant (split across shards),
 * so the single-shard curve hits an index of the same capacity — its
 * flattening is physical contention on the store's singleton lines
 * (map/index header rows in the one otable, whose row locks every
 * transaction's read-set joins and releases serialize through), not a
 * smaller cache.  Sharding splits exactly those singletons; that this
 * is the mechanism is visible in prof.cycles.ustm.backoff collapsing
 * on the sharded points while abort counts stay flat.
 */
constexpr std::uint64_t kScalingMapBuckets = 512;
constexpr unsigned kScalingOtableBuckets = 65536; ///< Total, all shards.

svc::SvcParams
scalingParams(bool quick, unsigned shards)
{
    svc::SvcParams p;
    p.load.keyspace = 128;
    p.load.zipfTheta = 0.0; // Uniform: contention from structure, not skew.
    p.load.mix.getPct = 60;
    p.load.mix.putPct = 25;
    p.load.mix.scanPct = 0;
    p.load.mix.rmwPct = 10;
    p.load.mix.xferPct = 5;
    p.load.mix.rawGetPct = 0;
    p.load.requestsPerClient = quick ? 12 : 48;
    p.load.scanLen = 4;
    p.load.seed = 11;
    p.load.openLoop = false;
    p.load.meanThink = 0; // Saturating clients: peak-throughput regime.
    p.mapBuckets = std::max<std::uint64_t>(1, kScalingMapBuckets / shards);
    p.shards = shards;
    return p;
}

int
runScaling(bool quick, bench::JsonReport &report)
{
    const TxSystemKind kind = TxSystemKind::UstmStrong;
    std::vector<std::pair<int, unsigned>> points;
    for (const int cores : {4, 8, 16, 32})
        for (const unsigned shards : {1u, 8u})
            points.emplace_back(cores, shards);
    if (!quick) {
        // Full mode: extend the curve to 48 cores — the largest
        // machine the simulator supports (the otable owner set is one
        // 64-bit word, one bit per hardware thread, with the top slot
        // reserved for the init context) — and sweep the shard count
        // at the 32-core gate point.
        points.emplace_back(48, 1u);
        points.emplace_back(48, 8u);
        for (const unsigned shards : {2u, 4u, 16u})
            points.emplace_back(32, shards);
    }

    std::printf("tmserve scaling: closed-loop %s, uniform keys, "
                "total %llu map buckets / %u otable buckets%s\n",
                txSystemKindName(kind),
                (unsigned long long)kScalingMapBuckets,
                kScalingOtableBuckets, quick ? " (quick)" : "");
    std::printf("%-13s %5s %6s %9s %9s %10s %11s %9s %9s\n", "system",
                "cores", "shards", "requests", "aborts", "abort_rate",
                "req/Mcyc", "p99", "p99.9");

    // (cores, shards) -> (throughput, abort rate), for the gate below.
    std::map<std::pair<int, unsigned>, std::pair<double, double>> curve;

    for (const auto &[cores, shards] : points) {
        svc::SvcParams p = scalingParams(quick, shards);
        RunConfig cfg = bench::baseRunConfig();
        cfg.kind = kind;
        cfg.threads = cores;
        cfg.machine = MachineConfig::withCores(cores);
        cfg.machine.sched = bench::benchSched();
        cfg.machine.seed = 42;
        cfg.machine.otableBuckets =
            std::max(1024u, kScalingOtableBuckets / shards);
        const RunResult res = svc::runService(p, cfg);
        if (!res.valid) {
            std::fprintf(stderr,
                         "VALIDATION FAILED: svc-scaling %d cores, "
                         "%u shards\n",
                         cores, shards);
            return 1;
        }

        const std::uint64_t served = res.stat("svc.requests");
        const std::uint64_t aborts = res.stat("svc.request_aborts");
        const double abort_rate =
            served ? double(aborts) / double(served) : 0.0;
        const double throughput =
            res.cycles ? double(served) * 1e6 / double(res.cycles) : 0.0;
        const Histogram &lat = res.hist("svc.latency");
        curve[{cores, shards}] = {throughput, abort_rate};

        std::printf("%-13s %5d %6u %9llu %9llu %10.3f %11.1f %9llu "
                    "%9llu\n",
                    txSystemKindName(kind), cores, shards,
                    (unsigned long long)served,
                    (unsigned long long)aborts, abort_rate, throughput,
                    (unsigned long long)lat.quantile(0.99),
                    (unsigned long long)lat.quantile(0.999));

        if (!report.enabled())
            continue;
        json::Writer w;
        w.beginObject();
        w.kv("benchmark", "svc-scaling");
        w.kv("system", txSystemKindName(kind));
        w.kv("mode", "scaling");
        w.kv("threads", cores);
        w.kv("shards", std::uint64_t(shards));
        w.kv("requests", served);
        w.kv("aborts", aborts);
        w.kv("abort_rate", abort_rate);
        w.kv("run_cycles", res.cycles);
        w.kv("throughput_req_per_mcycle", throughput);
        w.kv("p50_cycles", lat.quantile(0.50));
        w.kv("p99_cycles", lat.quantile(0.99));
        w.kv("p999_cycles", lat.quantile(0.999));
        w.endObject();
        report.row(w);
    }

    // The win criterion (ISSUE 6): >= 3x throughput at 32 cores with 8
    // shards vs 1 shard, at a comparable abort rate.  Self-gating so
    // CI fails loudly if a regression flattens the sharded curve.
    const auto one = curve.at({32, 1u});
    const auto eight = curve.at({32, 8u});
    const double speedup = one.first > 0.0 ? eight.first / one.first : 0.0;
    std::printf("scaling gate: 32 cores, 8 shards vs 1 shard: %.2fx "
                "throughput (abort rate %.3f vs %.3f)\n",
                speedup, eight.second, one.second);
    if (speedup < 3.0) {
        std::fprintf(stderr,
                     "SCALING GATE FAILED: %.2fx < 3x at 32 cores\n",
                     speedup);
        return 1;
    }
    if (eight.second > one.second + 0.05) {
        std::fprintf(stderr,
                     "SCALING GATE FAILED: sharded abort rate %.3f "
                     "not comparable to unsharded %.3f\n",
                     eight.second, one.second);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool scaling = false;
    bool predictor = false;
    bool batching = false;
    bool durable = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else if (!std::strcmp(argv[i], "--scaling"))
            scaling = true;
        else if (!std::strcmp(argv[i], "--predictor"))
            predictor = true;
        else if (!std::strcmp(argv[i], "--batching"))
            batching = true;
        else if (!std::strcmp(argv[i], "--durable"))
            durable = true;
    }
    bench::parseSchedArgs(argc, argv);
    bench::JsonReport report(scaling     ? "svc_scaling"
                             : predictor ? "svc_predictor"
                             : batching  ? "svc_batching"
                             : durable   ? "svc_durable"
                                         : "svc_latency",
                             argc, argv, "ufotm-svc",
                             predictor  ? kSvcPredictorSchemaVersion
                             : batching ? kSvcBatchingSchemaVersion
                             : durable  ? kSvcDurableSchemaVersion
                                        : kSvcSchemaVersion);

    const int rc = scaling     ? runScaling(quick, report)
                   : predictor ? runPredictor(quick, report)
                   : batching  ? runBatching(quick, report)
                   : durable   ? runDurable(quick, report)
                               : runLatency(quick, report);
    if (rc != 0)
        return rc;
    return report.write() ? 0 : 1;
}
