/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation (Section 5), printing the same rows/series.  Absolute
 * numbers come from this repository's simulator, not the authors'
 * full-system testbed; the *shape* (who wins, by what rough factor,
 * where the crossovers are) is the reproduction target.  See
 * EXPERIMENTS.md.
 */

#ifndef UFOTM_BENCH_BENCH_UTIL_HH
#define UFOTM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "stamp/failover_ubench.hh"
#include "stamp/genome.hh"
#include "stamp/kmeans.hh"
#include "stamp/vacation.hh"
#include "stamp/workload.hh"

namespace utm::bench {

/** The STAMP-like benchmark set of Figure 5/6. */
struct BenchSpec
{
    std::string id;   ///< e.g. "kmeans-high"
    std::string base; ///< "kmeans" | "vacation" | "genome"
    bool high = false;
};

inline std::vector<BenchSpec>
stampBenchmarks()
{
    return {
        {"kmeans-high", "kmeans", true},
        {"kmeans-low", "kmeans", false},
        {"vacation-high", "vacation", true},
        {"vacation-low", "vacation", false},
        {"genome", "genome", false},
    };
}

/** Build a workload; @p scale multiplies the default problem size. */
inline std::unique_ptr<Workload>
makeStampWorkload(const BenchSpec &spec, double scale = 1.0)
{
    if (spec.base == "kmeans") {
        KmeansParams p = KmeansParams::contention(spec.high);
        p.points = static_cast<int>(p.points * scale);
        return std::make_unique<KmeansWorkload>(p);
    }
    if (spec.base == "vacation") {
        VacationParams p = VacationParams::contention(spec.high);
        p.totalTasks = static_cast<int>(p.totalTasks * scale);
        return std::make_unique<VacationWorkload>(p);
    }
    if (spec.base == "genome") {
        GenomeParams p;
        p.segments = static_cast<int>(p.segments * scale);
        p.uniquePool = static_cast<int>(p.uniquePool * scale);
        return std::make_unique<GenomeWorkload>(p);
    }
    std::fprintf(stderr, "unknown benchmark %s\n", spec.base.c_str());
    std::abort();
}

/** The TM systems compared in Figure 5. */
inline std::vector<TxSystemKind>
figure5Systems()
{
    return {
        TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
        TxSystemKind::HyTm,         TxSystemKind::PhTm,
        TxSystemKind::Ustm,         TxSystemKind::UstmStrong,
        TxSystemKind::Tl2,
    };
}

/** Run one configuration and return the result (dies if invalid). */
inline RunResult
runOnce(const BenchSpec &spec, TxSystemKind kind, int threads,
        double scale = 1.0, std::uint64_t seed = 42)
{
    auto w = makeStampWorkload(spec, scale);
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = threads;
    cfg.machine.seed = seed;
    RunResult res = runWorkload(*w, cfg);
    if (!res.valid) {
        std::fprintf(stderr,
                     "VALIDATION FAILED: %s on %s with %d threads\n",
                     spec.id.c_str(), txSystemKindName(kind), threads);
        std::abort();
    }
    return res;
}

/** Sequential (NoTm, 1 thread) baseline cycles. */
inline Cycles
sequentialBaseline(const BenchSpec &spec, double scale = 1.0,
                   std::uint64_t seed = 42)
{
    return runOnce(spec, TxSystemKind::NoTm, 1, scale, seed).cycles;
}

} // namespace utm::bench

#endif // UFOTM_BENCH_BENCH_UTIL_HH
