/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation (Section 5), printing the same rows/series.  Absolute
 * numbers come from this repository's simulator, not the authors'
 * full-system testbed; the *shape* (who wins, by what rough factor,
 * where the crossovers are) is the reproduction target.  See
 * EXPERIMENTS.md.
 */

#ifndef UFOTM_BENCH_BENCH_UTIL_HH
#define UFOTM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/scheduler.hh"
#include "sim/stats_json.hh"
#include "stamp/failover_ubench.hh"
#include "stamp/genome.hh"
#include "stamp/kmeans.hh"
#include "stamp/vacation.hh"
#include "stamp/workload.hh"

namespace utm::bench {

/**
 * The "ufotm-bench" document's own schema version — decoupled from
 * stats::kSchemaVersion so stats-schema revisions don't silently
 * re-version the bench documents (tools/benchdiff.py and committed
 * bench/baselines/ depend on this staying stable).
 */
constexpr int kBenchSchemaVersion = 1;

/** The STAMP-like benchmark set of Figure 5/6. */
struct BenchSpec
{
    std::string id;   ///< e.g. "kmeans-high"
    std::string base; ///< "kmeans" | "vacation" | "genome"
    bool high = false;
};

inline std::vector<BenchSpec>
stampBenchmarks()
{
    return {
        {"kmeans-high", "kmeans", true},
        {"kmeans-low", "kmeans", false},
        {"vacation-high", "vacation", true},
        {"vacation-low", "vacation", false},
        {"genome", "genome", false},
    };
}

/** Build a workload; @p scale multiplies the default problem size. */
inline std::unique_ptr<Workload>
makeStampWorkload(const BenchSpec &spec, double scale = 1.0)
{
    if (spec.base == "kmeans") {
        KmeansParams p = KmeansParams::contention(spec.high);
        p.points = static_cast<int>(p.points * scale);
        return std::make_unique<KmeansWorkload>(p);
    }
    if (spec.base == "vacation") {
        VacationParams p = VacationParams::contention(spec.high);
        p.totalTasks = static_cast<int>(p.totalTasks * scale);
        return std::make_unique<VacationWorkload>(p);
    }
    if (spec.base == "genome") {
        GenomeParams p;
        p.segments = static_cast<int>(p.segments * scale);
        p.uniquePool = static_cast<int>(p.uniquePool * scale);
        return std::make_unique<GenomeWorkload>(p);
    }
    std::fprintf(stderr, "unknown benchmark %s\n", spec.base.c_str());
    std::abort();
}

/** The TM systems compared in Figure 5. */
inline std::vector<TxSystemKind>
figure5Systems()
{
    return {
        TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
        TxSystemKind::HyTm,         TxSystemKind::PhTm,
        TxSystemKind::Ustm,         TxSystemKind::UstmStrong,
        TxSystemKind::Tl2,
    };
}

/**
 * Process-wide scheduler selection for bench runs.  Every bench main
 * calls parseSchedArgs(); `--sched=POLICY` (minclock, maxclock,
 * random, pct, roundrobin) then applies to every simulated run, so
 * any reported figure shape can be re-checked under an exploratory
 * schedule rather than only the min-clock default.
 */
inline SchedulerConfig &
benchSched()
{
    static SchedulerConfig sc;
    return sc;
}

/**
 * Process-wide timeline-export prefix (`--timeline=PREFIX`, parsed by
 * parseSchedArgs).  When set, every simulated run writes a
 * `ufotm-timeline` document to PREFIX.<run#>.json, numbered in run
 * order.  Empty = telemetry off (the default; bench baselines are
 * byte-identical with telemetry off).
 */
inline std::string &
benchTimelinePrefix()
{
    static std::string prefix;
    return prefix;
}

inline void
parseSchedArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--sched=", 8)) {
            if (!parseSchedPolicy(argv[i] + 8, &benchSched().policy)) {
                std::fprintf(stderr,
                             "unknown scheduler policy '%s'\n",
                             argv[i] + 8);
                std::exit(2);
            }
        } else if (!std::strncmp(argv[i], "--timeline=", 11)) {
            benchTimelinePrefix() = argv[i] + 11;
        }
    }
}

/** A RunConfig with the process-wide scheduler selection applied. */
inline RunConfig
baseRunConfig()
{
    RunConfig cfg;
    cfg.machine.sched = benchSched();
    if (!benchTimelinePrefix().empty()) {
        static unsigned run = 0;
        cfg.timelinePath =
            benchTimelinePrefix() + "." + std::to_string(run++) +
            ".json";
    }
    return cfg;
}

/** Run one configuration and return the result (dies if invalid). */
inline RunResult
runOnce(const BenchSpec &spec, TxSystemKind kind, int threads,
        double scale = 1.0, std::uint64_t seed = 42)
{
    auto w = makeStampWorkload(spec, scale);
    RunConfig cfg = baseRunConfig();
    cfg.kind = kind;
    cfg.threads = threads;
    cfg.machine.seed = seed;
    RunResult res = runWorkload(*w, cfg);
    if (!res.valid) {
        std::fprintf(stderr,
                     "VALIDATION FAILED: %s on %s with %d threads\n",
                     spec.id.c_str(), txSystemKindName(kind), threads);
        std::abort();
    }
    return res;
}

/** Sequential (NoTm, 1 thread) baseline cycles. */
inline Cycles
sequentialBaseline(const BenchSpec &spec, double scale = 1.0,
                   std::uint64_t seed = 42)
{
    return runOnce(spec, TxSystemKind::NoTm, 1, scale, seed).cycles;
}

/**
 * Structured output for bench binaries (the `--json` mode of
 * docs/OBSERVABILITY.md).  Construction parses argv; when enabled,
 * rows accumulated via row() are written as
 *
 *   {"schema": "ufotm-bench", "schema_version": 1,
 *    "bench": "<name>", "rows": [...]}
 *
 * (bench_svc passes "ufotm-svc" as the schema override)
 *
 * to BENCH_<name>.json (or the --json=PATH override) by write(),
 * which each bench main calls once after its last row.  Rows are
 * bench-specific objects, pre-serialized with json::Writer.
 */
class JsonReport
{
  public:
    JsonReport(std::string bench, int argc, char **argv,
               std::string schema = "ufotm-bench",
               int version = kBenchSchemaVersion)
        : bench_(std::move(bench)), schema_(std::move(schema)),
          version_(version)
    {
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--json")) {
                enabled_ = true;
                path_ = "BENCH_" + bench_ + ".json";
            } else if (!std::strncmp(argv[i], "--json=", 7)) {
                enabled_ = true;
                path_ = argv[i] + 7;
            }
        }
    }

    bool enabled() const { return enabled_; }

    /** Append one pre-serialized JSON object. */
    void
    row(const json::Writer &w)
    {
        rows_.push_back(w.str());
    }

    /** Write the report; no-op (returning true) when not enabled. */
    bool
    write() const
    {
        if (!enabled_)
            return true;
        json::Writer w;
        w.beginObject();
        w.kv("schema", schema_);
        w.kv("schema_version", version_);
        w.kv("bench", bench_);
        w.key("rows").beginArray();
        for (const std::string &r : rows_)
            w.raw(r);
        w.endArray();
        w.endObject();
        const bool ok = stats::writeFile(path_, w.str());
        if (ok)
            std::fprintf(stderr, "wrote %s\n", path_.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n", path_.c_str());
        return ok;
    }

  private:
    std::string bench_;
    std::string schema_;
    int version_ = kBenchSchemaVersion;
    std::string path_;
    std::vector<std::string> rows_;
    bool enabled_ = false;
};

/** Serialize a RunResult's headline fields + counters into @p w. */
inline void
emitRunResult(json::Writer &w, const RunResult &r)
{
    w.kv("cycles", r.cycles);
    w.kv("valid", r.valid);
    w.kv("hw_commits", r.hwCommits);
    w.kv("sw_commits", r.swCommits);
    w.kv("failovers", r.failovers);
    w.key("counters").beginObject();
    for (const auto &[name, value] : r.stats)
        w.kv(name, value);
    w.endObject();
}

} // namespace utm::bench

#endif // UFOTM_BENCH_BENCH_UTIL_HH
