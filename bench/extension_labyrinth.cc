/**
 * @file
 * Extension experiment: the hybrid's degradation floor.
 *
 * labyrinth-style routing transactions read hundreds of lines, so on
 * the UFO hybrid essentially every transaction overflows the L1 and
 * fails over.  The hybrid should degrade gracefully to
 * pure-strongly-atomic-STM performance (paying one doomed hardware
 * attempt per transaction) while the unbounded HTM shows what
 * hardware completion of arbitrary transactions would buy — the
 * pay-per-use trade the paper's Section 2.3 argues about.
 */

#include <cstdio>

#include "bench_util.hh"
#include "stamp/labyrinth.hh"
#include "stamp/workload.hh"

using namespace utm;

int
main(int argc, char **argv)
{
    bench::JsonReport report("extension_labyrinth", argc, argv);
    bench::parseSchedArgs(argc, argv);
    std::printf("Extension: labyrinth (always-overflow transactions), "
                "speedup vs sequential\n\n");
    std::printf("%-8s %14s %14s %14s %14s %16s\n", "threads",
                "unbounded", "ufo-hybrid", "ustm-ufo", "tl2",
                "hybrid-failover%");

    auto run = [&](TxSystemKind kind, int threads) {
        LabyrinthParams p;
        LabyrinthWorkload w(p);
        RunConfig cfg = bench::baseRunConfig();
        cfg.kind = kind;
        cfg.threads = threads;
        cfg.machine.seed = 42;
        RunResult r = runWorkload(w, cfg);
        if (!r.valid) {
            std::fprintf(stderr, "labyrinth validation failed (%s)\n",
                         txSystemKindName(kind));
            std::abort();
        }
        return r;
    };

    const Cycles seq = run(TxSystemKind::NoTm, 1).cycles;
    for (int threads : {1, 2, 4, 8}) {
        RunResult unbounded = run(TxSystemKind::UnboundedHtm, threads);
        RunResult hybrid = run(TxSystemKind::UfoHybrid, threads);
        RunResult stm = run(TxSystemKind::UstmStrong, threads);
        RunResult tl2 = run(TxSystemKind::Tl2, threads);
        const double total_tx =
            double(hybrid.hwCommits + hybrid.swCommits);
        std::printf("%-8d %14.2f %14.2f %14.2f %14.2f %15.0f%%\n",
                    threads, double(seq) / double(unbounded.cycles),
                    double(seq) / double(hybrid.cycles),
                    double(seq) / double(stm.cycles),
                    double(seq) / double(tl2.cycles),
                    100.0 * double(hybrid.failovers) / total_tx);
        if (report.enabled()) {
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", "labyrinth");
            w.kv("threads", threads);
            w.kv("seq_cycles", seq);
            w.kv("speedup_unbounded",
                 double(seq) / double(unbounded.cycles));
            w.kv("speedup_ufo_hybrid",
                 double(seq) / double(hybrid.cycles));
            w.kv("speedup_ustm_ufo",
                 double(seq) / double(stm.cycles));
            w.kv("speedup_tl2", double(seq) / double(tl2.cycles));
            w.kv("hybrid_failover_fraction",
                 double(hybrid.failovers) / total_tx);
            w.endObject();
            report.row(w);
        }
    }
    std::printf("\n(expected: ~100%% failover -- every transaction "
                "snapshots the whole grid; the hybrid lands at "
                "STM-like performance, paying one doomed hardware "
                "attempt per transaction, while the unbounded HTM "
                "shows what hardware completion would buy)\n");
    return report.write() ? 0 : 1;
}
