/**
 * @file
 * Appendix A: overhead of saving/restoring UFO bits when pages swap.
 *
 * Reproduces the paper's two observations with the swap model:
 *  - under normal swapping pressure the kernel modification costs
 *    next to nothing;
 *  - under thrashing, the UFO-record traffic adds visible overhead
 *    (paper: ~8%), most of which the all-clear-page optimization
 *    recovers because only protected pages pay.
 */

#include <cstdio>

#include "bench_util.hh"
#include "mem/sim_memory.hh"
#include "sim/machine.hh"
#include "ufo/swap_model.hh"
#include "ufo/ufo.hh"

using namespace utm;

namespace {

struct Scenario
{
    const char *label;
    std::uint64_t workingSetPages;
    std::uint64_t physFrames;
};

/**
 * Run a page-reference stream over the model and return total cycles.
 * @p protected_pct of pages carry UFO bits (as if an STM ran).
 */
Cycles
runScenario(const Scenario &sc, bool ufo_support, bool all_clear,
            int protected_pct)
{
    MachineConfig mc;
    mc.numCores = 1;
    mc.timerQuantum = 0;
    Machine machine(mc);
    ThreadContext &tc = machine.initContext();

    SwapModel::Config cfg;
    cfg.physFrames = sc.physFrames;
    cfg.ufoSwapSupport = ufo_support;
    cfg.allClearOptimization = all_clear;
    SwapModel swap(machine, cfg);

    // Mark a fraction of pages as UFO-protected (one line each is
    // enough to defeat the all-clear optimization for that page).
    Rng rng(123);
    for (std::uint64_t p = 0; p < sc.workingSetPages; ++p) {
        if (rng.nextBounded(100) < std::uint64_t(protected_pct)) {
            machine.memory().setUfoBits(
                p * SimMemory::kPageSize, kUfoWriteOnly);
        }
    }

    // 80/20 reference stream: most touches hit a hot subset.
    const std::uint64_t hot = std::max<std::uint64_t>(
        1, sc.workingSetPages / 5);
    const Cycles start = tc.now();
    for (int i = 0; i < 60000; ++i) {
        std::uint64_t page = rng.nextBounded(100) < 80
                                 ? rng.nextBounded(hot)
                                 : rng.nextBounded(sc.workingSetPages);
        swap.touchPage(tc, page);
        tc.advance(200); // Inter-fault work.
    }
    return tc.now() - start;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("appendixA_swap", argc, argv);
    std::printf("Appendix A: UFO swap-support overhead\n");
    std::printf("(cycles relative to a kernel without UFO swap "
                "support; 10%% of pages protected)\n\n");

    const Scenario scenarios[] = {
        {"normal swapping (512MB-like)", 512, 500},
        {"thrashing (64MB-like)", 512, 64},
    };

    std::printf("%-30s %14s %14s %14s\n", "scenario", "no-ufo",
                "ufo+allclear", "ufo-naive");
    for (const Scenario &sc : scenarios) {
        const Cycles base = runScenario(sc, false, false, 10);
        const Cycles opt = runScenario(sc, true, true, 10);
        const Cycles naive = runScenario(sc, true, false, 10);
        std::printf("%-30s %14.3f %14.3f %14.3f\n", sc.label, 1.0,
                    double(opt) / double(base),
                    double(naive) / double(base));
        if (report.enabled()) {
            json::Writer w;
            w.beginObject();
            w.kv("scenario", sc.label);
            w.kv("working_set_pages", sc.workingSetPages);
            w.kv("phys_frames", sc.physFrames);
            w.kv("cycles_no_ufo", base);
            w.kv("cycles_ufo_allclear", opt);
            w.kv("cycles_ufo_naive", naive);
            w.kv("overhead_allclear", double(opt) / double(base));
            w.kv("overhead_naive", double(naive) / double(base));
            w.endObject();
            report.row(w);
        }
    }
    std::printf("\n(expected: ~1.00 under normal swapping; a visible "
                "premium when thrashing, mostly recovered by the "
                "all-clear optimization)\n");
    return report.write() ? 0 : 1;
}
