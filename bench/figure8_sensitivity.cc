/**
 * @file
 * Figure 8 / Section 5.4: sensitivity of the UFO hybrid to the
 * contention-management policy choices, on the contention-heavy
 * benchmarks (8 threads).  Bars, normalized to the paper's
 * recommended policy (higher is better):
 *
 *   1. requester-wins hardware CM (with failover after 5 conflict
 *      aborts to preserve forward progress) — "performance tanks";
 *   2. age-ordered CM but failing over to software on the 5th
 *      contention abort — worse than never failing over;
 *   3. stall (rather than abort) on UFO faults — partial mitigation
 *      when combined with bar 2's failover policy;
 *   4. oracle: UFO bit sets only kill true conflicts — little gain,
 *      false conflicts are not a first-order cost.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

namespace {

struct PolicyCase
{
    const char *label;
    TmPolicy policy;
};

std::vector<PolicyCase>
policyCases()
{
    std::vector<PolicyCase> out;

    TmPolicy recommended; // Paper defaults.
    out.push_back({"recommended", recommended});

    TmPolicy requester_wins = recommended;
    requester_wins.btm.cm = BtmPolicy::Cm::RequesterWins;
    requester_wins.conflictFailoverThreshold = 5; // Livelock escape.
    out.push_back({"requester-wins", requester_wins});

    TmPolicy failover_nth = recommended;
    failover_nth.conflictFailoverThreshold = 5;
    out.push_back({"failover-on-5th-conflict", failover_nth});

    TmPolicy stall_ufo = failover_nth;
    stall_ufo.btm.ufoFaultResponse = BtmPolicy::UfoFaultResponse::Stall;
    out.push_back({"stall-on-ufo-fault", stall_ufo});

    TmPolicy oracle = recommended;
    oracle.btm.ufoSetTrueConflictOracle = true;
    out.push_back({"true-conflict-oracle", oracle});

    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 1.0;
    int threads = 8;
    JsonReport report("figure8_sensitivity", argc, argv);
    parseSchedArgs(argc, argv);
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            scale = 0.5;

    std::printf("Figure 8: UFO-hybrid CM policy sensitivity "
                "(%d threads; performance normalized to the "
                "recommended policy)\n\n", threads);

    const BenchSpec benches[] = {
        {"kmeans-high", "kmeans", true},
        {"vacation-high", "vacation", true},
        {"vacation-low", "vacation", false},
        {"genome", "genome", false},
    };

    auto cases = policyCases();
    std::printf("%-26s", "policy");
    for (const BenchSpec &b : benches)
        std::printf(" %14s", b.id.c_str());
    std::printf("\n");

    std::vector<Cycles> baseline(std::size(benches));
    for (std::size_t i = 0; i < std::size(benches); ++i) {
        auto w = makeStampWorkload(benches[i], scale);
        RunConfig cfg = baseRunConfig();
        cfg.kind = TxSystemKind::UfoHybrid;
        cfg.threads = threads;
        cfg.machine.seed = 42;
        cfg.policy = cases[0].policy;
        RunResult r = runWorkload(*w, cfg);
        if (!r.valid)
            std::abort();
        baseline[i] = r.cycles;
    }

    for (const PolicyCase &pc : cases) {
        std::printf("%-26s", pc.label);
        for (std::size_t i = 0; i < std::size(benches); ++i) {
            auto w = makeStampWorkload(benches[i], scale);
            RunConfig cfg = baseRunConfig();
            cfg.kind = TxSystemKind::UfoHybrid;
            cfg.threads = threads;
            cfg.machine.seed = 42;
            cfg.policy = pc.policy;
            RunResult r = runWorkload(*w, cfg);
            if (!r.valid) {
                std::printf(" %14s", "INVALID");
                continue;
            }
            std::printf(" %14.2f",
                        double(baseline[i]) / double(r.cycles));
            if (report.enabled()) {
                json::Writer jw;
                jw.beginObject();
                jw.kv("policy", pc.label);
                jw.kv("benchmark", benches[i].id);
                jw.kv("threads", threads);
                jw.kv("relative_performance",
                      double(baseline[i]) / double(r.cycles));
                emitRunResult(jw, r);
                jw.endObject();
                report.row(jw);
            }
        }
        std::printf("\n");
    }
    return report.write() ? 0 : 1;
}
