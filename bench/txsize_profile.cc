/**
 * @file
 * Transaction-footprint profile per benchmark (run on the unbounded
 * HTM so every transaction commits and is measured whole).
 *
 * Explains the Figure 5/6 failover behaviour structurally: a
 * transaction overflows an 8-way 64-set L1 when ~one set fills, which
 * becomes likely as footprints approach a few hundred lines.  kmeans
 * stays tiny, vacation-low has a heavy tail, labyrinth is uniformly
 * enormous.
 */

#include <cstdio>

#include "bench_util.hh"
#include "stamp/intruder.hh"
#include "stamp/labyrinth.hh"

using namespace utm;
using namespace utm::bench;

namespace {

void
profile(const char *label, Workload &w, JsonReport &report)
{
    RunConfig cfg = baseRunConfig();
    cfg.kind = TxSystemKind::UnboundedHtm;
    cfg.threads = 8;
    cfg.machine.seed = 42;

    // Capture the histogram through a machine we own: replicate
    // runWorkload but keep the Machine alive for inspection.
    MachineConfig mc = cfg.machine;
    mc.numCores = cfg.threads;
    Machine machine(mc);
    TxHeap heap(machine);
    auto sys = TxSystem::create(cfg.kind, machine, cfg.policy);
    sys->setup();
    w.setup(machine.initContext(), heap, cfg.threads);
    for (int t = 0; t < cfg.threads; ++t) {
        machine.addThread(
            [&w, sys = sys.get(), t, n = cfg.threads](
                ThreadContext &tc) { w.threadBody(tc, *sys, t, n); });
    }
    machine.run();
    if (!w.validate(machine.initContext()))
        std::abort();

    const Histogram &h = machine.stats().histogram("btm.tx_lines");
    std::printf("%-16s %10llu %8llu %8llu %8llu %8llu %10.1f%%\n",
                label, static_cast<unsigned long long>(h.samples()),
                static_cast<unsigned long long>(h.quantile(0.50)),
                static_cast<unsigned long long>(h.quantile(0.90)),
                static_cast<unsigned long long>(h.quantile(0.99)),
                static_cast<unsigned long long>(h.max()),
                100.0 * double(h.countAbove(255)) /
                    double(std::max<std::uint64_t>(1, h.samples())));
    if (report.enabled()) {
        json::Writer jw;
        jw.beginObject();
        jw.kv("benchmark", label);
        jw.kv("txns", h.samples());
        jw.kv("p50", h.quantile(0.50));
        jw.kv("p90", h.quantile(0.90));
        jw.kv("p99", h.quantile(0.99));
        jw.kv("max", h.max());
        jw.kv("fraction_above_256",
              double(h.countAbove(255)) /
                  double(std::max<std::uint64_t>(1, h.samples())));
        jw.endObject();
        report.row(jw);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    JsonReport report("txsize_profile", argc, argv);
    parseSchedArgs(argc, argv);
    std::printf("Transaction footprint profile (lines touched; "
                "unbounded HTM, 8 threads)\n\n");
    std::printf("%-16s %10s %8s %8s %8s %8s %11s\n", "benchmark",
                "txns", "p50", "p90", "p99", "max", ">256 lines");

    for (const BenchSpec &spec : stampBenchmarks()) {
        auto w = makeStampWorkload(spec);
        profile(spec.id.c_str(), *w, report);
    }
    {
        LabyrinthParams p;
        LabyrinthWorkload w(p);
        profile("labyrinth", w, report);
    }
    {
        IntruderParams p;
        IntruderWorkload w(p);
        profile("intruder", w, report);
    }
    std::printf("\n(quantiles are power-of-two bucket upper bounds; "
                "a 32 KiB 8-way L1 fits at most 512 lines and "
                "overflows when any one set exceeds 8)\n");
    return report.write() ? 0 : 1;
}
