/**
 * @file
 * Figure 7: throughput of the hybrid TMs as a function of the forced
 * software-failover rate, on a conflict-free microbenchmark
 * (8 threads), compared against pure HTM and pure STM.
 *
 * Expected shape (paper Section 5.3):
 *  - 7a: UFO hybrid and HyTM degrade ~linearly from pure-HTM-like to
 *    pure-STM-like; PhTM collapses quickly because one software
 *    transaction drags all concurrent transactions into software.
 *  - 7b (low rates): at 0% the UFO hybrid matches pure HTM; PhTM pays
 *    ~2% for the phase-counter check; HyTM pays more for its otable
 *    barriers.  The UFO hybrid's software transactions pay extra for
 *    UFO bit maintenance, so its slope is steeper than HyTM's and the
 *    curves cross at a high failover rate (paper: ~45%).
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

namespace {

double
throughput(TxSystemKind kind, double rate, int threads, int tx_per_thread)
{
    FailoverParams p;
    p.txPerThread = tx_per_thread;
    p.failoverRate = rate;
    FailoverUbench w(p);
    RunConfig cfg = baseRunConfig();
    cfg.kind = kind;
    cfg.threads = threads;
    cfg.machine.seed = 42;
    RunResult r = runWorkload(w, cfg);
    if (!r.valid) {
        std::fprintf(stderr, "ubench validation failed (%s, rate %.2f)\n",
                     txSystemKindName(kind), rate);
        std::abort();
    }
    const double total_tx = double(threads) * tx_per_thread;
    return total_tx * 1e6 / double(r.cycles); // txns per Mcycle
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 8;
    int tx_per_thread = 256;
    JsonReport report("figure7_failover", argc, argv);
    parseSchedArgs(argc, argv);
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            tx_per_thread = 96;

    const std::vector<TxSystemKind> hybrids = {
        TxSystemKind::UfoHybrid, TxSystemKind::HyTm, TxSystemKind::PhTm};

    std::printf("Figure 7a: throughput (txns/Mcycle) vs forced "
                "failover rate (%d threads)\n\n", threads);
    std::printf("%-8s %13s", "rate", "pure-htm");
    for (TxSystemKind k : hybrids)
        std::printf(" %13s", txSystemKindName(k));
    std::printf(" %13s\n", "pure-stm");

    const double pure_htm =
        throughput(TxSystemKind::UnboundedHtm, 0.0, threads,
                   tx_per_thread);
    const double pure_stm =
        throughput(TxSystemKind::UstmStrong, 0.0, threads,
                   tx_per_thread);

    auto emitRow = [&](const char *series, TxSystemKind k, double rate,
                       double tput) {
        json::Writer w;
        w.beginObject();
        w.kv("series", series);
        w.kv("system", txSystemKindName(k));
        w.kv("failover_rate", rate);
        w.kv("threads", threads);
        w.kv("tx_per_thread", tx_per_thread);
        w.kv("throughput_tx_per_mcycle", tput);
        w.kv("relative_to_pure_htm", pure_htm / tput);
        w.endObject();
        report.row(w);
    };
    if (report.enabled()) {
        emitRow("7a", TxSystemKind::UnboundedHtm, 0.0, pure_htm);
        emitRow("7a", TxSystemKind::UstmStrong, 0.0, pure_stm);
    }

    for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0}) {
        std::printf("%-8.2f %13.2f", rate, pure_htm);
        for (TxSystemKind k : hybrids) {
            const double t = throughput(k, rate, threads, tx_per_thread);
            std::printf(" %13.2f", t);
            if (report.enabled())
                emitRow("7a", k, rate, t);
        }
        std::printf(" %13.2f\n", pure_stm);
    }

    std::printf("\nFigure 7b: overhead at low failover rates "
                "(relative to pure HTM = 1.0; lower is better)\n\n");
    std::printf("%-8s", "rate");
    for (TxSystemKind k : hybrids)
        std::printf(" %13s", txSystemKindName(k));
    std::printf("\n");
    for (double rate : {0.0, 0.01, 0.02, 0.05}) {
        std::printf("%-8.2f", rate);
        for (TxSystemKind k : hybrids) {
            const double t = throughput(k, rate, threads, tx_per_thread);
            std::printf(" %13.3f", pure_htm / t);
            if (report.enabled())
                emitRow("7b", k, rate, t);
        }
        std::printf("\n");
    }
    return report.write() ? 0 : 1;
}
